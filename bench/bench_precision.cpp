// Precision study (paper §II: "The single precision was first implemented in
// QMCPACK GPU port with significant speedups and memory saving and later
// introduced to the CPU version"; the paper's miniQMC runs all-SP).
//
// Three SoA VGH configurations over the SAME logical coefficients:
//   double  — DP storage, DP accumulation (the accuracy reference)
//   float   — SP storage, SP accumulation (the paper's production path)
//   mixed   — SP storage, DP weight products + accumulation
//             (BsplineSoA<float, double>, core/bspline_soa.h)
// The float and mixed tables are narrowed from the DP build through
// convert_storage (core/coef_storage.h) — the one sanctioned precision-cast
// seam — so all three rows read identical table values.
//
// CI-gated ratio rows (tools/check_bench_regression.py):
//   table_bytes_ratio        — DP table bytes / mixed table bytes (~2x: the
//                              memory saving the SP storage buys)
//   mixed_vs_dp_vgh_speedup  — mixed must never lose to DP: it streams half
//                              the bytes through the same DP accumulation
// Absolute throughputs are report-only (heterogeneous CI fleet); ULP rows
// are informational accuracy evidence (the tier-1 tests gate accuracy).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "common/timer.h"
#include "core/bspline_soa.h"
#include "core/coef_storage.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"
#include "bench_common.h"

namespace {

using namespace mqc;

template <typename Engine>
double measure_vgh_throughput(const Engine& engine, int ns, double min_seconds)
{
  using T = typename Engine::store_type;
  WalkerSoA<T> out(engine.out_stride());
  const auto pos = mqc::bench::random_eval_positions(engine.coefs().grid(), ns, 5);
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const double t = time_per_iteration(
        [&] {
          for (int s = 0; s < ns; ++s)
            engine.evaluate_vgh(pos.x[static_cast<std::size_t>(s)],
                                pos.y[static_cast<std::size_t>(s)],
                                pos.z[static_cast<std::size_t>(s)], out.v.data(), out.g.data(),
                                out.h.data());
        },
        min_seconds, 2);
    best = std::max(best, static_cast<double>(engine.num_splines()) * ns / t);
  }
  return best;
}

/// Max scale-aware ULP deviation of a narrowed-storage engine's VGH outputs
/// (value, gradient, Hessian) from the DP engine over the same logical
/// table: |a - ref| divided by the float ULP at each output stream's own
/// magnitude (max |ref| over the sweep).  Raw bit-distance ULPs explode near
/// the orbitals' zero crossings — a 1e-12-vs-1e-9 disagreement is billions
/// of representable floats apart but physically negligible — so accuracy is
/// measured at the scale the consumer (the determinant/Jastrow arithmetic)
/// actually sees.
template <typename Engine>
double max_vgh_ulp(const Engine& engine, const BsplineSoA<double>& ref, int ns)
{
  using T = typename Engine::store_type;
  WalkerSoA<T> out(engine.out_stride());
  WalkerSoA<double> rout(ref.out_stride());
  const auto pos = mqc::bench::random_eval_positions(ref.coefs().grid(), ns, 7);
  // Pass 1: per-stream magnitude (v | g | h) of the DP reference.
  double scale_v = 0.0, scale_g = 0.0, scale_h = 0.0;
  for (int s = 0; s < ns; ++s) {
    ref.evaluate_vgh(pos.x[static_cast<std::size_t>(s)], pos.y[static_cast<std::size_t>(s)],
                     pos.z[static_cast<std::size_t>(s)], rout.v.data(), rout.g.data(),
                     rout.h.data());
    for (int n = 0; n < ref.num_splines(); ++n) {
      const auto k = static_cast<std::size_t>(n);
      scale_v = std::max(scale_v, std::abs(rout.v[k]));
      for (int d = 0; d < 3; ++d)
        scale_g = std::max(scale_g, std::abs(rout.g[static_cast<std::size_t>(d) * rout.stride + k]));
      for (int d = 0; d < 6; ++d)
        scale_h = std::max(scale_h, std::abs(rout.h[static_cast<std::size_t>(d) * rout.stride + k]));
    }
  }
  constexpr double ulp1 = 1.1920928955078125e-7; // float epsilon: 1 ULP at scale 1
  const auto ulps = [&](double a, double r, double scale) {
    return std::abs(a - r) / (ulp1 * std::max(scale, 1e-30));
  };
  // Pass 2: worst deviation in units of that stream's own ULP.
  double worst = 0.0;
  for (int s = 0; s < ns; ++s) {
    const double x = pos.x[static_cast<std::size_t>(s)], y = pos.y[static_cast<std::size_t>(s)],
                 z = pos.z[static_cast<std::size_t>(s)];
    engine.evaluate_vgh(static_cast<T>(x), static_cast<T>(y), static_cast<T>(z), out.v.data(),
                        out.g.data(), out.h.data());
    ref.evaluate_vgh(x, y, z, rout.v.data(), rout.g.data(), rout.h.data());
    for (int n = 0; n < engine.num_splines(); ++n) {
      const auto k = static_cast<std::size_t>(n);
      worst = std::max(worst, ulps(out.v[k], rout.v[k], scale_v));
      for (int d = 0; d < 3; ++d)
        worst = std::max(worst, ulps(out.g[static_cast<std::size_t>(d) * out.stride + k],
                                     rout.g[static_cast<std::size_t>(d) * rout.stride + k],
                                     scale_g));
      for (int d = 0; d < 6; ++d)
        worst = std::max(worst, ulps(out.h[static_cast<std::size_t>(d) * out.stride + k],
                                     rout.h[static_cast<std::size_t>(d) * rout.stride + k],
                                     scale_h));
    }
  }
  return worst;
}

} // namespace

int main(int argc, char** argv)
{
  using namespace mqc;
  using namespace mqc::bench;
  auto json = JsonReporter::from_args(argc, argv, "precision");
  const BenchScale scale = bench_scale();
  const int n = std::min(scale.n_single, 1024); // DP table is 2x the bytes

  print_banner(std::cout,
               "Precision study: SP / mixed / DP, SoA VGH at N=" + std::to_string(n));

  // One DP master table; the SP/mixed rows read its convert_storage
  // narrowing, so every row evaluates the same logical orbitals.
  const auto gridd = Grid3D<double>::cube(scale.grid, 1.0);
  const auto coefs_dp = make_random_storage<double>(gridd, n, 11);
  const auto coefs_sp = convert_storage<float>(*coefs_dp);

  const BsplineSoA<double> eng_dp(coefs_dp);
  const BsplineSoA<float> eng_sp(coefs_sp);
  const BsplineSoA<float, double> eng_mx(coefs_sp);

  const double t_dp = measure_vgh_throughput(eng_dp, scale.ns, scale.min_seconds);
  const double t_sp = measure_vgh_throughput(eng_sp, scale.ns, scale.min_seconds);
  const double t_mx = measure_vgh_throughput(eng_mx, scale.ns, scale.min_seconds);
  const double bytes_ratio =
      static_cast<double>(eng_dp.coef_bytes()) / static_cast<double>(eng_mx.coef_bytes());

  // Accuracy on real (plane-wave) orbitals at a modest size: how far the
  // narrowed-storage paths drift from the DP engine over the same logical
  // table.  The SP row carries storage AND accumulation error; the mixed row
  // narrows storage only, so it must sit at or below the SP row.
  const int ng_acc = 24, n_acc = 16;
  const auto pw = PlaneWaveOrbitals::make(n_acc, Vec3<double>{1, 1, 1}, 3);
  const auto acc_dp = build_planewave_storage(Grid3D<double>::cube(ng_acc, 1.0), pw);
  const auto acc_sp = convert_storage<float>(*acc_dp);
  const BsplineSoA<double> ref(acc_dp);
  const double ulp_sp = max_vgh_ulp(BsplineSoA<float>(acc_sp), ref, 100);
  const double ulp_mx = max_vgh_ulp(BsplineSoA<float, double>(acc_sp), ref, 100);

  TablePrinter tp({"path", "table (MB)", "T_VGH (Meval/s)", "vs double", "max ULP vs DP"});
  tp.add_row({"double (DP store, DP acc)", TablePrinter::cell(eng_dp.coef_bytes() / 1e6, 0),
              TablePrinter::cell(t_dp / 1e6, 2), TablePrinter::cell(1.0, 2), "0"});
  tp.add_row({"float (SP store, SP acc)", TablePrinter::cell(eng_sp.coef_bytes() / 1e6, 0),
              TablePrinter::cell(t_sp / 1e6, 2), TablePrinter::cell(t_sp / t_dp, 2),
              TablePrinter::cell(ulp_sp, 1)});
  tp.add_row({"mixed (SP store, DP acc)", TablePrinter::cell(eng_mx.coef_bytes() / 1e6, 0),
              TablePrinter::cell(t_mx / 1e6, 2), TablePrinter::cell(t_mx / t_dp, 2),
              TablePrinter::cell(ulp_mx, 1)});
  tp.print(std::cout);
  std::cout << "\nReading guide: the VGH kernel is bandwidth-bound at this table size, so\n"
               "halving the element size should buy ~2x; mixed keeps the SP streaming rate\n"
               "while accumulating in double, so it must never lose to the DP row.  ULP\n"
               "columns are measured against the DP engine over the same logical table\n"
               "(plane-wave orbitals): mixed carries storage-narrowing error only, float\n"
               "adds SP accumulation error on top.\n";

  json.add("dp_vgh_meval_s", t_dp / 1e6, "Meval/s");
  json.add("sp_vgh_meval_s", t_sp / 1e6, "Meval/s");
  json.add("mixed_vgh_meval_s", t_mx / 1e6, "Meval/s");
  json.add("sp_vs_dp_vgh_speedup", t_sp / t_dp, "x");
  json.add("mixed_vs_dp_vgh_speedup", t_mx / t_dp, "x");
  json.add("table_bytes_ratio", bytes_ratio, "x");
  json.add("sp_vgh_max_ulp", ulp_sp, "");
  json.add("mixed_vgh_max_ulp", ulp_mx, "");
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
