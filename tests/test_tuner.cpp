// Tests for the tile-size tuner and its FFTW-style wisdom persistence.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/synthetic_orbitals.h"
#include "core/tuner.h"

using namespace mqc;

TEST(Wisdom, KeyFormat)
{
  const auto key = Wisdom::make_key("vgh", "float", 2048, 48, 48, 48);
  EXPECT_EQ(key, "vgh:float:N=2048:grid=48x48x48");
}

TEST(Wisdom, InsertLookup)
{
  Wisdom w;
  EXPECT_FALSE(w.lookup("missing").has_value());
  w.insert("k1", {64, 1.5e9});
  const auto e = w.lookup("k1");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 64);
  EXPECT_DOUBLE_EQ(e->throughput, 1.5e9);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Wisdom, SaveLoadRoundTrip)
{
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_test.txt";
  Wisdom w;
  w.insert(Wisdom::make_key("vgh", "float", 512, 48, 48, 48), {128, 2.5e9});
  w.insert(Wisdom::make_key("v", "double", 256, 32, 32, 32), {64, 1.0e9});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.size(), 2u);
  const auto e = r.lookup(Wisdom::make_key("vgh", "float", 512, 48, 48, 48));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_NEAR(e->throughput, 2.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadMissingFileFails)
{
  Wisdom w;
  EXPECT_FALSE(w.load("/nonexistent/path/wisdom.txt"));
}

TEST(Tuner, DefaultCandidatesArePowersOfTwoUpToN)
{
  const auto c = default_tile_candidates(256, 16);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.front(), 16);
  EXPECT_EQ(c[3], 128);
  EXPECT_EQ(c.back(), 256);
}

TEST(Tuner, DefaultCandidatesNonPowerN)
{
  const auto c = default_tile_candidates(96, 16);
  // 16, 32, 64, 96
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.back(), 96);
}

TEST(Tuner, SweepReturnsBestCandidate)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 9);
  const auto result = tune_tile_size_vgh(*coefs, {16, 32, 64}, /*ns=*/8, /*min_seconds=*/0.005);
  EXPECT_EQ(result.tiles.size(), 3u);
  EXPECT_EQ(result.throughputs.size(), 3u);
  EXPECT_GT(result.best_throughput, 0.0);
  bool best_found = false;
  for (std::size_t i = 0; i < result.tiles.size(); ++i) {
    EXPECT_GT(result.throughputs[i], 0.0);
    EXPECT_LE(result.throughputs[i], result.best_throughput + 1e-9);
    if (result.tiles[i] == result.best_tile) {
      best_found = true;
      EXPECT_DOUBLE_EQ(result.throughputs[i], result.best_throughput);
    }
  }
  EXPECT_TRUE(best_found);
}
