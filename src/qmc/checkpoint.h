// Crash-consistent walker checkpoint/restore (ROADMAP item-1 prerequisite).
//
// A checkpoint serializes the FULL resumable run state of a miniQMC sweep —
// every walker's positions, rng stream (including the cached Box–Muller
// deviate), move counters, committed distance tables, and determinant engine
// state (the delayed engine's in-flight rank-k panel is serialized verbatim;
// see delayed_update.h for why a flush-at-snapshot would not be
// trajectory-neutral) — so that a run killed at step k and resumed produces
// the bit-for-bit identical `walker_accepts`/`walker_log_det` fingerprints
// as an uninterrupted run (tests/test_checkpoint.cpp, tools/fault_harness.py).
//
// On-disk format (version 1, little-endian, parseable from Python):
//
//   header   8s  magic "MQCCKPT1"
//            u32 format version (kFormatVersion)
//            u64 config trajectory hash (miniqmc_config_hash)
//            u32 section count
//            u32 CRC32 of the 24 header bytes above
//   section  u32 section id (SectionId)        -- repeated section-count times
//            u32 section index (walker id; 0 for Meta)
//            u64 payload length
//            u32 CRC32 of the payload
//            [length] payload bytes
//
// Crash consistency: write_snapshot serializes to memory, writes
// `path + ".tmp"`, flushes, then rotates `path` -> `path + ".prev"` and
// `tmp` -> `path`.  A crash at any point leaves either the old snapshot at
// `path`, or the old one at `.prev` with a complete new one at `path` — a
// torn write can only ever affect `.tmp`.  Loaders validate magic, version,
// config hash, and every per-section CRC; read_snapshot_with_fallback falls
// back to `.prev` when `path` is missing or damaged, so a corrupted latest
// snapshot degrades to the last good one instead of a crash or a silent
// wrong-state resume.
//
// ALL checkpoint file I/O lives in checkpoint.cpp (machine-enforced by the
// `checkpoint-io` lint rule, tools/lint_invariants.py).
#ifndef MQC_QMC_CHECKPOINT_H
#define MQC_QMC_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace mqc::ckpt {

inline constexpr char kMagic[8] = {'M', 'Q', 'C', 'C', 'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Process exit code of an injected `abort@N` fault (distinguishes the
/// deliberate kill from a genuine crash in the harness).
inline constexpr int kFaultExitCode = 42;

enum class SectionId : std::uint32_t
{
  Meta = 1,  ///< run cursor + shape (one per snapshot, index 0)
  Walker = 2 ///< one per walker, index = walker id
};

struct Section
{
  SectionId id = SectionId::Meta;
  std::uint32_t index = 0;
  std::vector<std::uint8_t> payload;
};

struct Snapshot
{
  std::uint64_t config_hash = 0;
  std::vector<Section> sections;

  [[nodiscard]] const Section* find(SectionId id, std::uint32_t index = 0) const noexcept
  {
    for (const auto& s : sections)
      if (s.id == id && s.index == index)
        return &s;
    return nullptr;
  }
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

// --------------------------------------------------------------------------
// Payload (de)serialization: little-endian append/consume over a byte buffer.
// The reader is bounds-checked and latches failure — callers stream reads
// and test ok() once at the end, so a truncated payload can never read past
// the buffer or be half-applied silently.
// --------------------------------------------------------------------------

class BlobWriter
{
public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void raw(const void* p, std::size_t n)
  {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(out_); }

private:
  std::vector<std::uint8_t> out_;
};

class BlobReader
{
public:
  BlobReader(const std::uint8_t* data, std::size_t size) noexcept : p_(data), left_(size) {}
  explicit BlobReader(const std::vector<std::uint8_t>& v) noexcept : BlobReader(v.data(), v.size())
  {
  }

  [[nodiscard]] std::uint8_t u8() noexcept { return scalar<std::uint8_t>(); }
  [[nodiscard]] std::uint32_t u32() noexcept { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() noexcept { return scalar<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() noexcept { return scalar<std::int32_t>(); }
  [[nodiscard]] float f32() noexcept { return scalar<float>(); }
  [[nodiscard]] double f64() noexcept { return scalar<double>(); }

  /// Copy @p n raw bytes out; zero-fills (and latches failure) on underrun.
  void raw(void* dst, std::size_t n) noexcept
  {
    if (n > left_) {
      std::memset(dst, 0, n);
      fail();
      return;
    }
    std::memcpy(dst, p_, n);
    p_ += n;
    left_ -= n;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept { return left_ == 0; }

private:
  template <typename T>
  [[nodiscard]] T scalar() noexcept
  {
    T v{};
    raw(&v, sizeof v);
    return v;
  }
  void fail() noexcept
  {
    ok_ = false;
    left_ = 0;
  }

  const std::uint8_t* p_;
  std::size_t left_;
  bool ok_ = true;
};

// --------------------------------------------------------------------------
// File I/O
// --------------------------------------------------------------------------

enum class LoadError
{
  None,       ///< snapshot loaded and validated
  Open,       ///< file missing / unreadable
  Magic,      ///< not a checkpoint file
  Version,    ///< format version newer/older than this build understands
  Header,     ///< header CRC mismatch
  ConfigHash, ///< snapshot belongs to a different run configuration
  Truncated,  ///< file ends mid-section
  SectionCrc, ///< a section's payload failed its CRC
  Layout      ///< payload shape disagrees with the live run (restore-time)
};

[[nodiscard]] const char* load_error_name(LoadError e) noexcept;

struct LoadResult
{
  LoadError error = LoadError::None;
  std::string detail;        ///< one-line human-readable diagnosis
  std::string path_used;     ///< file actually loaded (primary or `.prev`)
  bool fallback_used = false; ///< true when `.prev` served the snapshot

  [[nodiscard]] bool loaded() const noexcept { return error == LoadError::None; }
};

/// Atomically persist @p snap at @p path (tmp + rename; previous snapshot
/// rotated to `path + ".prev"`).  Returns false with @p error set on I/O
/// failure — the previous snapshot is left untouched in that case.
bool write_snapshot(const std::string& path, const Snapshot& snap, std::string* error);

/// Load and fully validate one snapshot file.  @p expected_config_hash
/// guards against resuming state from a different configuration.
[[nodiscard]] LoadResult read_snapshot(const std::string& path,
                                       std::uint64_t expected_config_hash, Snapshot& out);

/// read_snapshot, falling back to `path + ".prev"` when the primary is
/// missing or damaged.  The returned LoadResult describes the file that
/// actually served (fallback_used) or, when both fail, the primary's error
/// with the fallback's appended to detail.
[[nodiscard]] LoadResult read_snapshot_with_fallback(const std::string& path,
                                                     std::uint64_t expected_config_hash,
                                                     Snapshot& out);

// --------------------------------------------------------------------------
// Fault injection (MQC_FAULT_INJECT / MiniQMCConfig::fault_inject)
// --------------------------------------------------------------------------
//
// Spec: comma-separated tokens, applied at the step boundary named by
// `abort@N` (after any interval-aligned checkpoint write at that boundary):
//
//   abort@N            std::_Exit(kFaultExitCode) at step boundary N
//   corrupt@header     flip a byte inside the file header
//   corrupt@meta       flip a byte inside the Meta section payload
//   corrupt@walker<i>  flip a byte inside walker i's section payload
//   truncate@K         drop the last K bytes of the file
//
// corrupt/truncate tokens damage the checkpoint file at `path` right before
// the abort — they require an `abort@N` companion to fire.  A malformed
// token produces a one-line stderr warning and is ignored (never UB, never
// a partial plan); numeric arguments are digits-only, so signed forms like
// `abort@+3` are rejected rather than silently parsed.  Every damage token
// that fires prints a `fault-injected:` confirmation, and one that finds
// nothing to damage (e.g. `corrupt@walker9` in a 4-walker snapshot) prints
// a `fault-injection NO-OP:` warning — tools/fault_harness.py fails a
// scenario whose injection was a no-op.

struct FaultPlan
{
  int abort_at_step = -1;    ///< -1 = no abort fault armed
  bool corrupt_header = false;
  bool corrupt_meta = false;
  int corrupt_walker = -1;   ///< walker id whose section gets a flipped byte
  int truncate_tail = 0;     ///< bytes to chop off the end of the file

  [[nodiscard]] bool armed() const noexcept { return abort_at_step >= 0; }
};

/// Parse a fault spec (see above).  Empty/whitespace spec => inert plan.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Damage the snapshot file at @p path per the plan's corrupt/truncate
/// tokens (no-op for a plan without them).  Each token is confirmed
/// (`fault-injected:`) or reported (`fault-injection NO-OP:`) on stderr;
/// returns false on I/O failure or when any requested damage found nothing
/// to hit, so a caller can tell an armed-but-inert plan from a real one.
bool apply_file_faults(const std::string& path, const FaultPlan& plan);

} // namespace mqc::ckpt

#endif // MQC_QMC_CHECKPOINT_H
