// Uniform grids and periodic coordinate reduction (paper Eq. 5/6).
//
// A position x is reduced to (cell index i, fractional offset t in [0,1))
// with i = floor((x-start)/delta).  For periodic splines — the only boundary
// condition production QMC orbitals use — the cell index wraps modulo the
// number of grid intervals so any real x is valid input.
#ifndef MQC_CORE_GRID_H
#define MQC_CORE_GRID_H

#include <cmath>
#include <cstddef>

namespace mqc {

/// One uniform axis of the interpolation domain.
template <typename T>
struct Grid1D
{
  T start = T(0);
  T end = T(1);
  int num = 1; ///< number of grid intervals (== grid points for periodic data)
  T delta = T(1);
  T delta_inv = T(1);

  Grid1D() = default;
  Grid1D(T s, T e, int n)
      : start(s), end(e), num(n), delta((e - s) / static_cast<T>(n)),
        delta_inv(static_cast<T>(n) / (e - s))
  {
  }

  /// Reduced coordinate: wrapped cell index in [0,num) and t in [0,1).
  struct Reduced
  {
    int cell;
    T frac;
  };

  Reduced reduce_periodic(T x) const noexcept
  {
    const T u = (x - start) * delta_inv;
    T ipart = std::floor(u);
    T t = u - ipart;
    int i = static_cast<int>(ipart) % num;
    if (i < 0)
      i += num;
    // Guard against floating rounding pushing t to 1.0 (x == end exactly).
    if (t >= T(1)) {
      t = T(0);
      i = (i + 1) % num;
    }
    return Reduced{i, t};
  }

  /// Reduced coordinate clamped to the domain (for bounded 1D splines).
  Reduced reduce_clamped(T x) const noexcept
  {
    T u = (x - start) * delta_inv;
    if (u < T(0))
      u = T(0);
    int i = static_cast<int>(u);
    if (i > num - 1)
      i = num - 1;
    T t = u - static_cast<T>(i);
    if (t > T(1))
      t = T(1);
    return Reduced{i, t};
  }
};

/// Tensor-product 3D grid.
template <typename T>
struct Grid3D
{
  Grid1D<T> x, y, z;

  Grid3D() = default;
  Grid3D(Grid1D<T> gx, Grid1D<T> gy, Grid1D<T> gz) : x(gx), y(gy), z(gz) {}

  /// Cube [0,L)^3 with n intervals per side — the paper's 48^3 setting.
  static Grid3D cube(int n, T length = T(1))
  {
    return Grid3D(Grid1D<T>(T(0), length, n), Grid1D<T>(T(0), length, n),
                  Grid1D<T>(T(0), length, n));
  }

  [[nodiscard]] std::size_t num_points() const noexcept
  {
    return static_cast<std::size_t>(x.num) * y.num * z.num;
  }
};

} // namespace mqc

#endif // MQC_CORE_GRID_H
