// Tests for the batched multi-walker evaluation extension: equivalence with
// per-walker serial evaluation for every kernel and for both schedules (the
// per-(tile, walker) ablation path and the position-blocked fused path),
// across tile counts (including a remainder tile), population sizes, block
// sizes that do not divide the population, and both precisions.  Multi-vs-
// single comparisons are exact (ULP-tight): both paths run the identical
// per-(i,j) kernel, so outputs must match bit for bit.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/synthetic_orbitals.h"
#include "test_utils.h"

using namespace mqc;

namespace {

template <typename T>
struct BatchFixtureT
{
  std::shared_ptr<CoefStorage<T>> coefs;
  std::unique_ptr<MultiBspline<T>> engine;
  std::vector<Vec3<T>> positions;
  std::vector<std::unique_ptr<WalkerSoA<T>>> serial, batched;
  std::vector<WalkerSoA<T>*> batched_ptrs;

  BatchFixtureT(int n, int tile, int nw, std::uint64_t seed)
  {
    const auto grid = Grid3D<T>::cube(8, T(1));
    coefs = make_random_storage<T>(grid, n, seed);
    engine = std::make_unique<MultiBspline<T>>(*coefs, tile);
    Xoshiro256 rng(seed + 1);
    for (int w = 0; w < nw; ++w) {
      positions.push_back(Vec3<T>{static_cast<T>(rng.uniform()), static_cast<T>(rng.uniform()),
                                  static_cast<T>(rng.uniform())});
      serial.push_back(std::make_unique<WalkerSoA<T>>(engine->out_stride()));
      batched.push_back(std::make_unique<WalkerSoA<T>>(engine->out_stride()));
      batched_ptrs.push_back(batched.back().get());
    }
  }

  void run_serial_vgh()
  {
    for (std::size_t w = 0; w < positions.size(); ++w)
      engine->evaluate_vgh(positions[w].x, positions[w].y, positions[w].z, serial[w]->v.data(),
                           serial[w]->g.data(), serial[w]->h.data(), serial[w]->stride);
  }

  void run_serial_vgl()
  {
    for (std::size_t w = 0; w < positions.size(); ++w)
      engine->evaluate_vgl(positions[w].x, positions[w].y, positions[w].z, serial[w]->v.data(),
                           serial[w]->g.data(), serial[w]->l.data(), serial[w]->stride);
  }

  void run_serial_v()
  {
    for (std::size_t w = 0; w < positions.size(); ++w)
      engine->evaluate_v(positions[w].x, positions[w].y, positions[w].z, serial[w]->v.data());
  }

  void expect_vgh_equal() const
  {
    for (std::size_t w = 0; w < positions.size(); ++w)
      for (std::size_t i = 0; i < engine->padded_splines(); ++i) {
        ASSERT_EQ(serial[w]->v[i], batched[w]->v[i]) << "walker " << w;
        ASSERT_EQ(serial[w]->g[i], batched[w]->g[i]) << "walker " << w;
        ASSERT_EQ(serial[w]->h[i], batched[w]->h[i]) << "walker " << w;
      }
  }
};

using BatchFixture = BatchFixtureT<float>;

} // namespace

// ---------------------------------------------------------------------------
// Per-(tile, walker) ablation path
// ---------------------------------------------------------------------------

class BatchedEquivalence : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BatchedEquivalence, VghMatchesSerial)
{
  const auto [n, tile, nw] = GetParam();
  BatchFixture f(n, tile, nw, 42);
  f.run_serial_vgh();
  evaluate_vgh_batched(*f.engine, f.positions, f.batched_ptrs);
  f.expect_vgh_equal();
}

INSTANTIATE_TEST_SUITE_P(Populations, BatchedEquivalence,
                         ::testing::Values(std::make_tuple(64, 16, 1),
                                           std::make_tuple(64, 16, 4),
                                           std::make_tuple(64, 32, 7),
                                           std::make_tuple(48, 16, 12),
                                           std::make_tuple(96, 96, 3)));

TEST(Batched, VMatchesSerial)
{
  BatchFixture f(64, 16, 5, 7);
  f.run_serial_v();
  evaluate_v_batched(*f.engine, f.positions, f.batched_ptrs);
  for (int w = 0; w < 5; ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i)
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->v[i],
                f.batched[static_cast<std::size_t>(w)]->v[i]);
}

TEST(Batched, VglMatchesSerial)
{
  BatchFixture f(64, 32, 6, 9);
  f.run_serial_vgl();
  evaluate_vgl_batched(*f.engine, f.positions, f.batched_ptrs);
  for (int w = 0; w < 6; ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i) {
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->v[i],
                f.batched[static_cast<std::size_t>(w)]->v[i]);
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->l[i],
                f.batched[static_cast<std::size_t>(w)]->l[i]);
    }
}

TEST(Batched, EmptyPopulationIsNoOp)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 32, 3);
  MultiBspline<float> engine(*coefs, 16);
  std::vector<Vec3<float>> positions;
  std::vector<WalkerSoA<float>*> outs;
  evaluate_vgh_batched(engine, positions, outs); // must not crash
  evaluate_vgh_batched_multi(engine, positions, outs);
  evaluate_v_batched_multi(engine, positions, outs);
  evaluate_vgl_batched_multi(engine, positions, outs);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Position-blocked fused path
// ---------------------------------------------------------------------------

TEST(Batched, ResolvePosBlock)
{
  EXPECT_EQ(resolve_pos_block(0, 8), 8);   // whole population
  EXPECT_EQ(resolve_pos_block(-3, 5), 5);
  EXPECT_EQ(resolve_pos_block(3, 8), 3);
  EXPECT_EQ(resolve_pos_block(16, 8), 8);  // clamped to population
  EXPECT_EQ(resolve_pos_block(1, 1), 1);
}

/// (N, tile, nw, pos_block): includes a remainder tile (40 = 16+16+8), block
/// sizes that do not divide the population (7 walkers, P=3), P=1 (degenerate
/// single-position blocks), P larger than the population, and P=0 (one block
/// over the whole population).
class BatchedMultiEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(BatchedMultiEquivalence, FusedVghMatchesSerial_Float)
{
  const auto [n, tile, nw, pb] = GetParam();
  BatchFixture f(n, tile, nw, 1234);
  f.run_serial_vgh();
  evaluate_vgh_batched_multi(*f.engine, f.positions, f.batched_ptrs, pb);
  f.expect_vgh_equal();
}

TEST_P(BatchedMultiEquivalence, FusedVghMatchesSerial_Double)
{
  const auto [n, tile, nw, pb] = GetParam();
  BatchFixtureT<double> f(n, tile, nw, 4321);
  f.run_serial_vgh();
  evaluate_vgh_batched_multi(*f.engine, f.positions, f.batched_ptrs, pb);
  f.expect_vgh_equal();
}

INSTANTIATE_TEST_SUITE_P(BlocksAndPopulations, BatchedMultiEquivalence,
                         ::testing::Values(std::make_tuple(64, 16, 8, 0),
                                           std::make_tuple(64, 16, 8, 1),
                                           std::make_tuple(64, 32, 7, 3),
                                           std::make_tuple(40, 16, 12, 5),
                                           std::make_tuple(40, 16, 6, 4),
                                           std::make_tuple(96, 96, 3, 8),
                                           std::make_tuple(48, 16, 1, 2)));

TEST(BatchedMulti, FusedVMatchesSerial)
{
  BatchFixture f(40, 16, 7, 17);
  f.run_serial_v();
  evaluate_v_batched_multi(*f.engine, f.positions, f.batched_ptrs, 3);
  for (std::size_t w = 0; w < f.positions.size(); ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i)
      ASSERT_EQ(f.serial[w]->v[i], f.batched[w]->v[i]);
}

TEST(BatchedMulti, FusedVglMatchesSerial)
{
  BatchFixtureT<double> f(40, 16, 9, 19);
  f.run_serial_vgl();
  evaluate_vgl_batched_multi(*f.engine, f.positions, f.batched_ptrs, 4);
  for (std::size_t w = 0; w < f.positions.size(); ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i) {
      ASSERT_EQ(f.serial[w]->v[i], f.batched[w]->v[i]);
      ASSERT_EQ(f.serial[w]->g[i], f.batched[w]->g[i]);
      ASSERT_EQ(f.serial[w]->l[i], f.batched[w]->l[i]);
    }
}

TEST(BatchedMulti, FusedAndPerPairAgreeExactly)
{
  // Same kernels underneath — the two schedules must agree bit for bit.
  BatchFixture a(64, 16, 6, 23), b(64, 16, 6, 23);
  evaluate_vgh_batched(*a.engine, a.positions, a.batched_ptrs);
  evaluate_vgh_batched_multi(*b.engine, b.positions, b.batched_ptrs, 2);
  for (std::size_t w = 0; w < a.positions.size(); ++w)
    for (std::size_t i = 0; i < a.engine->padded_splines(); ++i) {
      ASSERT_EQ(a.batched[w]->v[i], b.batched[w]->v[i]);
      ASSERT_EQ(a.batched[w]->g[i], b.batched[w]->g[i]);
      ASSERT_EQ(a.batched[w]->h[i], b.batched[w]->h[i]);
    }
}
