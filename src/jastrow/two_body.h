// Two-body (electron-electron) Jastrow factor J2.
//
//   log psi_J2 = -sum_{i<j} u(r_ij)
//
// Per-electron derivatives (dr_ij = r_i - r_j stored in row i of an AA
// distance table):
//   grad_i = -sum_{j != i} u'(r_ij) * dr_ij / r_ij
//   lap_i  = -sum_{j != i} (u''(r_ij) + 2 u'(r_ij)/r_ij)
//
// Self-pairs are excluded by the table's self-distance sentinel (far beyond
// the functor cutoff), keeping the SoA inner loop branch-free.
#ifndef MQC_JASTROW_TWO_BODY_H
#define MQC_JASTROW_TWO_BODY_H

#include "common/aligned_allocator.h"
#include "common/vec3.h"
#include "distance/distance_table.h"
#include "jastrow/bspline_functor.h"

namespace mqc {

template <typename T>
class TwoBodyJastrowAoS
{
public:
  explicit TwoBodyJastrowAoS(const BsplineJastrowFunctor<T>& f) : f_(&f) {}

  T evaluate_log(const DistanceTableAA_AoS<T>& table, Vec3<T>* grad, T* lap) const
  {
    T usum = T(0);
    const int n = table.size();
    for (int i = 0; i < n; ++i) {
      Vec3<T> g{};
      T l = T(0);
      for (int j = 0; j < n; ++j) {
        const T r = table.dist(i, j);
        T du, d2u;
        const T u = f_->evaluate(r, du, d2u);
        usum += u; // counts each pair twice; halved below
        const Vec3<T>& dr = table.displ(i, j);
        const T rinv = r > T(0) ? T(1) / r : T(0);
        g += (du * rinv) * dr;
        l += d2u + T(2) * du * rinv;
      }
      grad[i] = T(-1) * g;
      lap[i] = -l;
    }
    return -T(0.5) * usum;
  }

  /// log(psi_new/psi_old) for a proposed move of electron iel (temp row must
  /// be primed via compute_temp).
  T ratio_log(const DistanceTableAA_AoS<T>& table, int iel) const
  {
    T u_old = T(0), u_new = T(0);
    for (int j = 0; j < table.size(); ++j) {
      if (j == iel)
        continue;
      u_old += f_->evaluate(table.dist(iel, j));
      u_new += f_->evaluate(table.temp_r()[j]);
    }
    return u_old - u_new;
  }

private:
  const BsplineJastrowFunctor<T>* f_;
};

template <typename T>
class TwoBodyJastrowSoA
{
public:
  explicit TwoBodyJastrowSoA(const BsplineJastrowFunctor<T>& f) : f_(&f) {}

  T evaluate_log(const DistanceTableAA_SoA<T>& table, Vec3<T>* grad, T* lap) const
  {
    T usum = T(0);
    const int n = table.size();
    auto& scratch = JastrowRowScratch<T>::for_this_thread();
    scratch.ensure(table.row_stride());
    aligned_vector<T>&u_row = scratch.u, &du_row = scratch.du, &d2u_row = scratch.d2u;
    for (int i = 0; i < n; ++i) {
      const T* MQC_RESTRICT r = table.dist_row(i);
      const T* MQC_RESTRICT dx = table.dx_row(i);
      const T* MQC_RESTRICT dy = table.dy_row(i);
      const T* MQC_RESTRICT dz = table.dz_row(i);
      f_->evaluate_row(r, n, u_row.data(), du_row.data(), d2u_row.data());
      const T* MQC_RESTRICT u_r = u_row.data();
      const T* MQC_RESTRICT du_r = du_row.data();
      const T* MQC_RESTRICT d2u_r = d2u_row.data();
      T gx = T(0), gy = T(0), gz = T(0), l = T(0), u = T(0);
      MQC_SIMD_REDUCTION(+ : gx, gy, gz, l, u)
      for (int j = 0; j < n; ++j) {
        const T rinv = r[j] > T(0) ? T(1) / r[j] : T(0);
        const T fac = du_r[j] * rinv;
        u += u_r[j];
        gx += fac * dx[j];
        gy += fac * dy[j];
        gz += fac * dz[j];
        l += d2u_r[j] + T(2) * fac;
      }
      usum += u;
      grad[i] = Vec3<T>{-gx, -gy, -gz};
      lap[i] = -l;
    }
    return -T(0.5) * usum;
  }

  T ratio_log(const DistanceTableAA_SoA<T>& table, int iel) const
  {
    const int n = table.size();
    // Self entries contribute zero through the cutoff sentinel in both rows.
    const T u_old = f_->sum_row(table.dist_row(iel), n);
    const T u_new = f_->sum_row(table.temp_r(), n);
    return u_old - u_new;
  }

private:
  const BsplineJastrowFunctor<T>* f_;
};

} // namespace mqc

#endif // MQC_JASTROW_TWO_BODY_H
