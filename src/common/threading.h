// Thread-team substrate for nested parallelism (paper §V-C).
//
// The paper's nested-threading implementation deliberately avoids the nested
// OpenMP runtime: one *flat* parallel region is opened with
// Nw_teams × nth threads and each thread computes its own
// (walker, team-member) coordinates; the M spline tiles of a walker are then
// distributed among that walker's nth members by a static partition.  This
// header provides exactly that arithmetic plus the usual block partitioner.
#ifndef MQC_COMMON_THREADING_H
#define MQC_COMMON_THREADING_H

#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mqc {

inline int max_threads() noexcept
{
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int thread_id() noexcept
{
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int num_threads_in_region() noexcept
{
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

/// Coordinates of one thread inside the flat walker×member decomposition.
struct TeamCoordinates
{
  int walker = 0; ///< which Monte Carlo walker this thread serves
  int member = 0; ///< rank within the walker's team, in [0, nth)
};

/// Map a flat thread id onto (walker, member) for teams of size @p nth.
/// Threads of one team are consecutive so that on real machines they land on
/// neighbouring cores sharing cache — the locality the paper's explicit
/// partition is designed for.
constexpr TeamCoordinates team_coordinates(int tid, int nth) noexcept
{
  return TeamCoordinates{tid / nth, tid % nth};
}

/// Half-open index range.
struct Range
{
  std::size_t first = 0;
  std::size_t last = 0;
  [[nodiscard]] constexpr std::size_t size() const noexcept { return last - first; }
  [[nodiscard]] constexpr bool empty() const noexcept { return first == last; }
};

/// Contiguous block partition of [0, total) into @p parts pieces; the first
/// (total % parts) pieces are one element longer.  Every element is covered
/// exactly once for any parts >= 1, including parts > total.
constexpr Range block_range(std::size_t total, std::size_t parts, std::size_t which) noexcept
{
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t first = which * base + (which < extra ? which : extra);
  const std::size_t size = base + (which < extra ? 1 : 0);
  return Range{first, first + size};
}

/// Round-robin partition: member @p which of @p parts owns indices
/// which, which+parts, ... (the distribution the paper uses for tiles so
/// that the tile→thread map is independent of M % nth).
class StridedRange
{
public:
  constexpr StridedRange(std::size_t total, std::size_t parts, std::size_t which) noexcept
      : total_(total), stride_(parts), next_(which)
  {
  }

  template <typename Fn>
  void for_each(Fn&& fn) const
  {
    for (std::size_t i = next_; i < total_; i += stride_)
      fn(i);
  }

  [[nodiscard]] constexpr std::size_t count() const noexcept
  {
    return next_ >= total_ ? 0 : (total_ - next_ - 1) / stride_ + 1;
  }

private:
  std::size_t total_;
  std::size_t stride_;
  std::size_t next_;
};

} // namespace mqc

#endif // MQC_COMMON_THREADING_H
