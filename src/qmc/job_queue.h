// JobQueue: asynchronous job submission onto a resident WalkerPopulation
// (ROADMAP item 1's "many small requests multiplexed onto one hot, resident
// spline engine").
//
// A job is an independent unit of Monte Carlo work — its own walker count,
// step budget and rng seed — validated against the resident system (one
// population serves one physical system at one kernel precision; a
// mismatched job is rejected with a surfaced error, never silently run on
// the wrong tables).  One worker thread per population shard pops jobs from
// a shared queue, PACKS up to `max_pack` of them into a single lock-step
// crowd on its shard's socket-local engine (qmc/crowd_sweep.h), and sweeps
// the pack together so the spline tables are streamed once per move across
// all packed jobs — the crowd amortization applied across job boundaries.
// Jobs with unequal step budgets are ordered longest-first inside a pack
// and retire from the sweep as their budgets expire (the active range is
// always a prefix), so packing never pads short jobs.
//
// Determinism contract (tests/test_population.cpp): every job's per-walker
// trajectory is a function of (the population's resident tables, job seed,
// walker index) alone — regardless of which shard served it, what it was
// packed with, or the submission order.  A job whose seed equals the
// population's is bit-for-bit identical to a standalone run_miniqmc with
// that seed/walkers/steps; other seeds draw independent walker streams
// against the same resident tables (the config seed sources both the table
// and the streams, and jobs deliberately reuse the resident table).
//
// Threading: workers are plain std::threads; all sweeps inside a worker run
// with a serial TeamHandle (the parallelism is across shards and packed
// walkers, not within a job's facade calls), and the shared MiniQMCSystem
// state they touch is read-only.  The queue itself is a mutex + two
// condition variables — no lock is held while sweeping.
#ifndef MQC_QMC_JOB_QUEUE_H
#define MQC_QMC_JOB_QUEUE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qmc/walker_population.h"

namespace mqc {

/// One independent unit of work: system × precision × step budget.
struct JobSpec
{
  int num_walkers = 1;
  int steps = 1;         ///< Monte Carlo sweeps for this job's walkers
  std::uint64_t seed = 1; ///< rng seed; trajectories are f(seed, walker index)
  /// Kernel precision the submitter expects, in bytes per real.  Must match
  /// the resident engine (sizeof(float) for this build's qmc_real) — a
  /// population cannot serve a double-precision job from float tables.
  int precision_bytes = 4;
  /// Requested system shape; 0 / {0,0,0} = inherit the resident system.
  /// Non-zero values must MATCH the resident system: one population owns one
  /// set of replicated coefficient tables, so a different system is a
  /// routing error surfaced per job, not a silent re-build.
  int grid_size = 0;
  std::array<int, 3> supercell{0, 0, 0};
};

struct JobResult
{
  std::uint64_t id = 0;
  bool ok = false;
  std::string error; ///< rejection reason when !ok (validation, never a crash)
  int shard = -1;    ///< shard whose resident engine served the job
  /// Per-walker trajectory fingerprints, same semantics as MiniQMCResult's.
  std::vector<std::size_t> walker_accepts;
  std::vector<double> walker_log_det;
};

class JobQueue
{
public:
  /// Spin up one worker per shard of @p pop.  @p max_pack caps how many
  /// queued jobs one worker fuses into a single crowd sweep (>= 1; a pure
  /// throughput knob — packing is trajectory-neutral per job).  The
  /// population must outlive the queue; jobs share its read-only systems.
  explicit JobQueue(WalkerPopulation& pop, int max_pack = 4);
  /// Drains: finishes every submitted job, then joins the workers.
  ~JobQueue();
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue a job; returns its id immediately (workers pick it up async).
  /// After drain() has closed the queue, the job is NOT enqueued: it gets an
  /// immediate ok=false "queue closed" result, retrievable via wait()/
  /// drain() like any other — a defined, surfaced rejection instead of the
  /// silent drop a submit racing worker shutdown could otherwise suffer.
  std::uint64_t submit(const JobSpec& spec);
  /// Block until job @p id completes and return its result (one-shot: the
  /// result is handed over and released).  An unknown or already-collected
  /// id returns ok=false immediately.
  JobResult wait(std::uint64_t id);
  /// Close the queue to new work, block until every submitted job has
  /// completed, and return all uncollected results in submission order
  /// (releasing them).  Jobs submitted after drain() are rejected (see
  /// submit); a later drain() returns any such rejection results.
  std::vector<JobResult> drain();

  [[nodiscard]] int num_workers() const noexcept;
  /// Jobs completed so far (monotone; includes rejected jobs).
  [[nodiscard]] std::size_t completed() const;
  /// Crowd sweeps executed so far — completed()/packed_batches() is the
  /// measured packing factor the bench reports.
  [[nodiscard]] std::size_t packed_batches() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

} // namespace mqc

#endif // MQC_QMC_JOB_QUEUE_H
