// Delayed (rank-k) determinant updates — the QMCPACK follow-on optimization
// to the per-move Sherman-Morrison path (listed as an extension in
// DESIGN.md; McDaniel et al., J. Chem. Phys. 147, 174107).
//
// Accepted column replacements are accumulated as a rank-k correction and
// applied to the stored inverse only when the delay window is full (or a
// flush is forced).  With all touched columns distinct,
//   A_k   = A_0 + U V^T,          U = [u_m - a0_{c_m}],  V = [e_{c_m}]
//   Ainv_k = B - (B U) S^{-1} (V^T B),   S = I_k + V^T B U,   B = Ainv_0
// (Woodbury identity).  Ratios during the delay are evaluated through the
// corrected row without materializing Ainv_k:
//   row_e(Ainv_k) . u = B_e . u - (BU)_e . S^{-1} (V^T B u)
//
// The flush applies the rank-k correction with tiled BLAS3-style loops (see
// flush() for the blocking argument); the data layout (BU, rows of B, small
// S) is exactly the production algorithm's, and equivalence with sequential
// Sherman-Morrison is enforced by the test suite.
#ifndef MQC_DETERMINANT_DELAYED_UPDATE_H
#define MQC_DETERMINANT_DELAYED_UPDATE_H

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/threading.h"
#include "determinant/lu.h"
#include "determinant/matrix.h"

namespace mqc {

class DelayedDeterminant
{
public:
  explicit DelayedDeterminant(int delay = 8) : delay_(delay) {}

  /// Initialize from the orbital matrix A (O(N^3)).
  bool build(const Matrix<double>& a)
  {
    binv_ = a;
    pending_cols_.clear();
    u_cols_.clear();
    bu_cols_.clear();
    vtb_rows_.clear();
    double dummy_sign;
    if (!invert_matrix(binv_, log_det_, dummy_sign))
      return false;
    sign_ = dummy_sign;
    a_current_ = a;
    return true;
  }

  [[nodiscard]] int size() const noexcept { return binv_.rows(); }
  [[nodiscard]] int delay() const noexcept { return delay_; }

  /// Thread team the flush may use (common/threading.h): the caller's inner
  /// team, handed down by the driver that owns this walker.  Defaults to
  /// serial.  Teams only split the flush's independent column blocks, so the
  /// result is bit-identical for every team size.
  void set_team(TeamHandle team) noexcept { team_ = team; }
  [[nodiscard]] TeamHandle team() const noexcept { return team_; }
  [[nodiscard]] int pending() const noexcept { return static_cast<int>(pending_cols_.size()); }
  [[nodiscard]] double log_det() const noexcept { return log_det_; }
  [[nodiscard]] double sign() const noexcept { return sign_; }

  /// det ratio for replacing column e with u, honouring pending updates.
  [[nodiscard]] double ratio(const double* u, int e) const
  {
    const int n = size();
    const int k = pending();
    double r = dot(binv_.row(e), u, n);
    if (k == 0)
      return r;
    // tvec = V^T B u  (k entries: row c_m of B dot u).
    std::vector<double> tvec(static_cast<std::size_t>(k));
    for (int m = 0; m < k; ++m)
      tvec[static_cast<std::size_t>(m)] = dot(vtb_rows_[static_cast<std::size_t>(m)].data(), u, n);
    // svec = S^{-1} tvec  (small dense solve).
    std::vector<double> svec = solve_small(tvec);
    for (int m = 0; m < k; ++m)
      r -= bu_cols_[static_cast<std::size_t>(m)][static_cast<std::size_t>(e)] *
           svec[static_cast<std::size_t>(m)];
    return r;
  }

  /// Accept a move previously priced by ratio(); flushes automatically when
  /// the delay window fills or the same electron is touched twice.
  void accept_move(const double* u, int e)
  {
    for (int c : pending_cols_)
      if (c == e) {
        flush();
        break;
      }
    const double r = ratio(u, e);
    assert(std::abs(r) > 0.0);
    const int n = size();

    // w = u - a0_e (the current *base* column of A, pre-pending updates).
    std::vector<double> w(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      w[static_cast<std::size_t>(i)] = u[i] - a_current_(i, e);
    // BU column: B w.
    std::vector<double> bw(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      bw[static_cast<std::size_t>(i)] = dot(binv_.row(i), w.data(), n);

    pending_cols_.push_back(e);
    u_cols_.push_back(std::move(w));
    bu_cols_.push_back(std::move(bw));
    vtb_rows_.emplace_back(binv_.row(e), binv_.row(e) + n);

    log_det_ += std::log(std::abs(r));
    if (r < 0.0)
      sign_ = -sign_;

    if (pending() >= delay_)
      flush();
  }

  /// Apply the accumulated rank-k correction to the stored inverse.
  ///
  /// The rank-k application Ainv -= BU * G is a tiled BLAS3-style update:
  /// loops are ordered (column block, row, m) so each row of the inverse is
  /// read and written ONCE per column block — with all k corrections
  /// applied while the k x JB panel of G sits in L1/L2 — instead of the
  /// inverse's n^2 doubles being swept k times as in the clarity-first
  /// (m, i, j) triple loop this replaces.  Per element the subtractions
  /// still happen in increasing-m order, so results are bit-identical to
  /// the unblocked loop (the equivalence tests compare exactly).
  ///
  /// When set_team() handed this walker an inner team, the column blocks
  /// are distributed over the team's threads: blocks touch disjoint column
  /// ranges of the inverse (and of nothing else), and within a block the
  /// (i, m, j) order is unchanged, so the threaded flush stays bit-identical
  /// to the serial one — only the k*n^2 sweep, the flush's only O(N^2)
  /// phase, is parallelized.
  void flush()
  {
    const int k = pending();
    if (k == 0)
      return;
    const int n = size();
    // S = I + V^T B U:  S(m,l) = delta_ml + vtb_rows_[m] . u_cols_[l].
    Matrix<double> s(k);
    for (int m = 0; m < k; ++m)
      for (int l = 0; l < k; ++l)
        s(m, l) = (m == l ? 1.0 : 0.0) +
                  dot(vtb_rows_[static_cast<std::size_t>(m)].data(),
                      u_cols_[static_cast<std::size_t>(l)].data(), n);
    std::vector<int> piv;
    const bool ok = lu_factor(s, piv);
    assert(ok && "delay window produced a singular correction");
    (void)ok;
    lu_invert(s, piv);

    // Ainv_k = B - BU * Sinv * VtB.   G = Sinv * VtB is k x n (k^2 n work —
    // small next to the k n^2 update below, so left unblocked).
    Matrix<double> g(k, n);
    for (int m = 0; m < k; ++m)
      for (int l = 0; l < k; ++l) {
        const double sml = s(m, l);
        if (sml == 0.0)
          continue;
        const double* vtb = vtb_rows_[static_cast<std::size_t>(l)].data();
        double* grow = g.row(m);
        for (int j = 0; j < n; ++j)
          grow[j] += sml * vtb[j];
      }

    // Pack the BU columns into one k x n panel so the inner m loop reads
    // contiguous memory instead of hopping between per-column vectors.
    Matrix<double> bu(k, n);
    for (int m = 0; m < k; ++m)
      std::copy(bu_cols_[static_cast<std::size_t>(m)].begin(),
                bu_cols_[static_cast<std::size_t>(m)].end(), bu.row(m));

    constexpr int kColBlock = 256; // 2 KB of each G row per block
    const int nblocks = (n + kColBlock - 1) / kColBlock;
    auto sweep_block = [&](int jb) {
      const int j0 = jb * kColBlock;
      const int j1 = std::min(n, j0 + kColBlock);
      for (int i = 0; i < n; ++i) {
        double* MQC_RESTRICT row = binv_.row(i);
        for (int m = 0; m < k; ++m) {
          const double f = bu(m, i);
          if (f == 0.0)
            continue;
          const double* MQC_RESTRICT grow = g.row(m);
          for (int j = j0; j < j1; ++j)
            row[j] -= f * grow[j];
        }
      }
    };
    // Column blocks are disjoint and the per-element (i, m, j) order inside
    // a block is unchanged, so the team-scheduled sweep stays bit-identical
    // to the serial one (threading.h seam; width capped at nblocks).
    team_for(team_, nblocks, sweep_block);

    // Fold the pending columns into the base orbital matrix.
    for (int m = 0; m < k; ++m) {
      const int e = pending_cols_[static_cast<std::size_t>(m)];
      const double* w = u_cols_[static_cast<std::size_t>(m)].data();
      for (int i = 0; i < n; ++i)
        a_current_(i, e) += w[static_cast<std::size_t>(i)];
    }

    pending_cols_.clear();
    u_cols_.clear();
    bu_cols_.clear();
    vtb_rows_.clear();
  }

  /// Inverse of the *current* determinant matrix (flushes first).
  const Matrix<double>& inverse()
  {
    flush();
    return binv_;
  }

  // -- checkpoint/restore state access (qmc/checkpoint.cpp) -----------------
  //
  // A snapshot serializes the IN-FLIGHT delayed window verbatim — the base
  // inverse, the base orbital matrix, and the pending rank-k panel — instead
  // of forcing a flush at the snapshot point.  Flushing would be simpler to
  // serialize but is NOT trajectory-neutral: applying the Woodbury
  // correction regroups the floating-point arithmetic of every subsequent
  // ratio, so a run that snapshots mid-window would diverge bit-wise from
  // an uninterrupted run.  Serializing the panel keeps the snapshot a pure
  // observer (tests/test_checkpoint.cpp proves both the panel round-trip and
  // the end-to-end trajectory equality at delay_rank >= 2).

  [[nodiscard]] const Matrix<double>& base_inverse() const noexcept { return binv_; }
  [[nodiscard]] const Matrix<double>& base_matrix() const noexcept { return a_current_; }
  [[nodiscard]] const std::vector<int>& pending_columns() const noexcept { return pending_cols_; }
  [[nodiscard]] const std::vector<std::vector<double>>& pending_u() const noexcept
  {
    return u_cols_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& pending_bu() const noexcept
  {
    return bu_cols_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& pending_vtb() const noexcept
  {
    return vtb_rows_;
  }

  /// Install a previously captured state verbatim (counterpart of the
  /// accessors above).  The caller is responsible for shape consistency;
  /// sizes are asserted, not repaired.
  void restore(Matrix<double> binv, Matrix<double> a_current, double log_det, double sign,
               std::vector<int> pending_cols, std::vector<std::vector<double>> u_cols,
               std::vector<std::vector<double>> bu_cols,
               std::vector<std::vector<double>> vtb_rows)
  {
    assert(binv.rows() == a_current.rows() && binv.cols() == a_current.cols());
    assert(pending_cols.size() == u_cols.size() && pending_cols.size() == bu_cols.size() &&
           pending_cols.size() == vtb_rows.size());
    binv_ = std::move(binv);
    a_current_ = std::move(a_current);
    log_det_ = log_det;
    sign_ = sign;
    pending_cols_ = std::move(pending_cols);
    u_cols_ = std::move(u_cols);
    bu_cols_ = std::move(bu_cols);
    vtb_rows_ = std::move(vtb_rows);
  }

private:
  static double dot(const double* a, const double* b, int n) noexcept
  {
    double s = 0.0;
    for (int i = 0; i < n; ++i)
      s += a[i] * b[i];
    return s;
  }

  /// Solve S x = t with S = I + V^T B U assembled on the fly (k is small).
  [[nodiscard]] std::vector<double> solve_small(const std::vector<double>& t) const
  {
    const int k = pending();
    const int n = size();
    Matrix<double> s(k);
    for (int m = 0; m < k; ++m)
      for (int l = 0; l < k; ++l)
        s(m, l) = (m == l ? 1.0 : 0.0) +
                  dot(vtb_rows_[static_cast<std::size_t>(m)].data(),
                      u_cols_[static_cast<std::size_t>(l)].data(), n);
    std::vector<int> piv;
    const bool ok = lu_factor(s, piv);
    assert(ok);
    (void)ok;
    // Forward/backward solve on the small factors.
    std::vector<double> x = t;
    for (int m = 0; m < k; ++m) {
      const int p = piv[static_cast<std::size_t>(m)];
      if (p != m)
        std::swap(x[static_cast<std::size_t>(m)], x[static_cast<std::size_t>(p)]);
    }
    for (int i = 1; i < k; ++i)
      for (int j = 0; j < i; ++j)
        x[static_cast<std::size_t>(i)] -= s(i, j) * x[static_cast<std::size_t>(j)];
    for (int i = k - 1; i >= 0; --i) {
      for (int j = i + 1; j < k; ++j)
        x[static_cast<std::size_t>(i)] -= s(i, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] /= s(i, i);
    }
    return x;
  }

  int delay_;
  TeamHandle team_ = TeamHandle::serial(); ///< flush team (caller's inner team)
  Matrix<double> binv_;      ///< inverse of the base matrix A_0
  Matrix<double> a_current_; ///< base orbital matrix (pending cols not folded)
  double log_det_ = 0.0;
  double sign_ = 1.0;
  std::vector<int> pending_cols_;
  std::vector<std::vector<double>> u_cols_;   ///< w_m = u_m - a0_{c_m}
  std::vector<std::vector<double>> bu_cols_;  ///< B w_m
  std::vector<std::vector<double>> vtb_rows_; ///< row c_m of B
};

} // namespace mqc

#endif // MQC_DETERMINANT_DELAYED_UPDATE_H
