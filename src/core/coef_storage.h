// The read-only 4D B-spline coefficient table P[nx+3][ny+3][nz+3][Npad]
// (paper §IV: "allocation of the P coefficient array is done as 1D array and
// uses an aligned allocator and includes padding to ensure the alignment of
// P[i][j][k] to a 512-bit cache-line boundary").
//
// Index convention (einspline periodic): storage index m along an axis holds
// control point c[(m-1) mod n], so an evaluation in cell i reads the four
// consecutive rows i..i+3 without any modulo in the hot loop.  The spline
// dimension N is innermost and padded to the SIMD lane count, which makes
// every P[i][j][k] row 64-byte aligned.
#ifndef MQC_CORE_COEF_STORAGE_H
#define MQC_CORE_COEF_STORAGE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/grid.h"

namespace mqc {

/// Precision family of an orbital evaluation path — an accuracy-affecting,
/// explicitly surfaced decision (never silent; same discipline as
/// EvalPath/TeamPath).
///
///   Native: storage and compute share one element type (today's SP or DP
///           engines) — the default, bit-for-bit identical to the historical
///           behaviour.
///   Mixed:  coefficient tables stored in float (half the streamed bytes of
///           a DP table), all weight products and V/VGL/VGH accumulation
///           carried in double, outputs narrowed once at the final store.
///           Opt-in and deterministic (same seed -> same trajectory), but
///           NOT bit-for-bit with the Native path (different rounding).
enum class PrecisionPath
{
  Native,
  Mixed
};

[[nodiscard]] inline const char* precision_path_name(PrecisionPath p) noexcept
{
  return p == PrecisionPath::Mixed ? "mixed" : "native";
}

template <typename T>
class CoefStorage
{
public:
  CoefStorage() = default;

  CoefStorage(const Grid3D<T>& grid, int num_splines)
      : grid_(grid), num_splines_(num_splines), n_pad_(aligned_size<T>(num_splines)),
        zs_(n_pad_), ys_(static_cast<std::size_t>(grid.z.num + 3) * zs_),
        xs_(static_cast<std::size_t>(grid.y.num + 3) * ys_),
        data_(static_cast<std::size_t>(grid.x.num + 3) * xs_, T(0))
  {
    assert(num_splines > 0);
  }

  [[nodiscard]] const Grid3D<T>& grid() const noexcept { return grid_; }
  [[nodiscard]] int num_splines() const noexcept { return num_splines_; }
  [[nodiscard]] std::size_t padded_splines() const noexcept { return n_pad_; }
  [[nodiscard]] std::size_t stride_x() const noexcept { return xs_; }
  [[nodiscard]] std::size_t stride_y() const noexcept { return ys_; }
  [[nodiscard]] std::size_t stride_z() const noexcept { return zs_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return data_.size() * sizeof(T); }

  /// Base of the length-Npad coefficient row at padded indices (i,j,k);
  /// i in [0, nx+3) etc.  Guaranteed 64-byte aligned.
  [[nodiscard]] const T* row(int i, int j, int k) const noexcept
  {
    return data_.data() + static_cast<std::size_t>(i) * xs_ + static_cast<std::size_t>(j) * ys_ +
           static_cast<std::size_t>(k) * zs_;
  }
  [[nodiscard]] T* row(int i, int j, int k) noexcept
  {
    return data_.data() + static_cast<std::size_t>(i) * xs_ + static_cast<std::size_t>(j) * ys_ +
           static_cast<std::size_t>(k) * zs_;
  }

  [[nodiscard]] T coef(int i, int j, int k, int n) const noexcept { return row(i, j, k)[n]; }
  void set_coef(int i, int j, int k, int n, T value) noexcept { row(i, j, k)[n] = value; }

  /// Write control point c[(ci,cj,ck)] of spline n into every padded storage
  /// slot that aliases it under the periodic wrap.  Control indices are the
  /// *unshifted* ones in [0, n); the (+1, mod) shift to storage indices and
  /// the replication of the three wrapped layers happen here, once, at build
  /// time — the evaluators never wrap.
  void set_control_point_periodic(int ci, int cj, int ck, int n, T value) noexcept
  {
    const int nx = grid_.x.num, ny = grid_.y.num, nz = grid_.z.num;
    for (int i = ci + 1; i < nx + 3; i += nx)
      for (int j = cj + 1; j < ny + 3; j += ny)
        for (int k = ck + 1; k < nz + 3; k += nz)
          set_coef(i, j, k, n, value);
    // Indices below the first period (storage index 0 holds c[n-1]).
    if (ci == nx - 1)
      for (int j = cj + 1; j < ny + 3; j += ny)
        for (int k = ck + 1; k < nz + 3; k += nz)
          set_coef(0, j, k, n, value);
    if (cj == ny - 1)
      for (int i = ci + 1; i < nx + 3; i += nx)
        for (int k = ck + 1; k < nz + 3; k += nz)
          set_coef(i, 0, k, n, value);
    if (ck == nz - 1)
      for (int i = ci + 1; i < nx + 3; i += nx)
        for (int j = cj + 1; j < ny + 3; j += ny)
          set_coef(i, j, 0, n, value);
    if (ci == nx - 1 && cj == ny - 1)
      for (int k = ck + 1; k < nz + 3; k += nz)
        set_coef(0, 0, k, n, value);
    if (ci == nx - 1 && ck == nz - 1)
      for (int j = cj + 1; j < ny + 3; j += ny)
        set_coef(0, j, 0, n, value);
    if (cj == ny - 1 && ck == nz - 1)
      for (int i = ci + 1; i < nx + 3; i += nx)
        set_coef(i, 0, 0, n, value);
    if (ci == nx - 1 && cj == ny - 1 && ck == nz - 1)
      set_coef(0, 0, 0, n, value);
  }

  /// Fill with deterministic pseudo-random coefficients.  Kernel performance
  /// is independent of coefficient values, so the bench harness uses this to
  /// avoid the (expensive, irrelevant) interpolation solve at N=4096 — the
  /// same shortcut miniQMC takes.
  void fill_random(std::uint64_t seed)
  {
    Xoshiro256 rng(seed);
    for (auto& v : data_)
      v = static_cast<T>(rng.uniform(-0.5, 0.5));
  }

  /// Copy splines [first, first+count) of @p src into this storage's
  /// [0, count) — the AoSoA tile split.  Grids must match.
  void assign_spline_range(const CoefStorage& src, int first, int count)
  {
    assert(count <= num_splines_);
    assert(first + count <= src.num_splines());
    const int nx = grid_.x.num + 3, ny = grid_.y.num + 3, nz = grid_.z.num + 3;
    for (int i = 0; i < nx; ++i)
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) {
          const T* s = src.row(i, j, k) + first;
          T* d = row(i, j, k);
          for (int n = 0; n < count; ++n)
            d[n] = s[n];
        }
  }

private:
  Grid3D<T> grid_;
  int num_splines_ = 0;
  std::size_t n_pad_ = 0;
  std::size_t zs_ = 0, ys_ = 0, xs_ = 0;
  aligned_vector<T> data_;
};

/// Convert a grid between element types, recomputing delta/delta_inv in the
/// destination precision (never round-tripping the derived members through
/// the source type).
template <typename TDst, typename TSrc>
[[nodiscard]] inline Grid3D<TDst> convert_grid(const Grid3D<TSrc>& g)
{
  return Grid3D<TDst>(Grid1D<TDst>(static_cast<TDst>(g.x.start), static_cast<TDst>(g.x.end), g.x.num),
                      Grid1D<TDst>(static_cast<TDst>(g.y.start), static_cast<TDst>(g.y.end), g.y.num),
                      Grid1D<TDst>(static_cast<TDst>(g.z.start), static_cast<TDst>(g.z.end), g.z.num));
}

/// THE precision-conversion seam (lint rule `precision-cast`): materialize an
/// element-wise converted copy of @p src in the calling thread (the
/// first-touch point — under Linux's default policy the copy's pages land on
/// the caller's socket).  Narrowing a DP build to SP here is the mixed-
/// precision path's table construction; because the synthetic builders fill
/// coefficients from double-valued sources, `convert_storage<float>(dp_build)`
/// is bit-identical to building the float table directly.  Code anywhere
/// else must not narrow coefficient data — route it through this function so
/// the accuracy decision has one audited owner.
template <typename TDst, typename TSrc>
[[nodiscard]] std::shared_ptr<CoefStorage<TDst>> convert_storage(const CoefStorage<TSrc>& src)
{
  auto dst = std::make_shared<CoefStorage<TDst>>(convert_grid<TDst>(src.grid()),
                                                 src.num_splines());
  // Only the logical splines are converted; the per-type padding tail (the
  // lane counts of TSrc and TDst differ) stays at the constructor's zeros.
  const int nx = src.grid().x.num + 3, ny = src.grid().y.num + 3, nz = src.grid().z.num + 3;
  const int count = src.num_splines();
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int k = 0; k < nz; ++k) {
        const TSrc* s = src.row(i, j, k);
        TDst* d = dst->row(i, j, k);
        for (int n = 0; n < count; ++n)
          d[n] = static_cast<TDst>(s[n]);
      }
  return dst;
}

/// Per-shard (per-socket) replicas of one read-only coefficient table.
///
/// On a NUMA host the table is the bandwidth wall (paper §IV; Luo et al.,
/// arXiv:1805.07406): a single allocation lands on one socket and every
/// other socket's inner teams pull all spline traffic across the
/// interconnect.  A WalkerPopulation therefore gives each shard its own
/// copy, materialized by `replicate(s)` ON the shard's own thread — under
/// Linux's default first-touch policy the copy's pages land on the socket
/// of the thread that writes them.  Shard 0 always resolves to the master
/// itself (no copy; it was first-touched by whoever built it), and each
/// shard's engines/OrbitalSet facade are then constructed over its replica,
/// so every facade evaluation on that shard reads socket-local memory.
///
/// Replicas are exact element-wise copies, so which replica serves a walker
/// is trajectory-neutral: bit-for-bit identical results for any shard count.
template <typename T>
class CoefReplicaSet
{
public:
  CoefReplicaSet() = default;

  /// @p master becomes shard 0's table (no copy); shards 1..n-1 start empty
  /// until their owning thread calls replicate().
  CoefReplicaSet(std::shared_ptr<CoefStorage<T>> master, int num_shards)
      : replicas_(static_cast<std::size_t>(num_shards < 1 ? 1 : num_shards))
  {
    assert(master != nullptr);
    replicas_[0] = std::move(master);
  }

  /// Wide-master (mixed-precision) mode: the authoritative table is a DP
  /// build and EVERY shard — including shard 0 — materializes its replica by
  /// narrowing it through convert_storage<T>() at replicate() time, on the
  /// shard's own thread (conversion and first-touch happen in one pass over
  /// the pages).  The wide master itself is never handed to an engine.
  CoefReplicaSet(std::shared_ptr<const CoefStorage<double>> wide_master, int num_shards)
      : replicas_(static_cast<std::size_t>(num_shards < 1 ? 1 : num_shards)),
        wide_master_(std::move(wide_master))
  {
    assert(wide_master_ != nullptr);
  }

  [[nodiscard]] int num_shards() const noexcept { return static_cast<int>(replicas_.size()); }

  /// True when this set narrows a wide (DP) master at replicate() time.
  [[nodiscard]] bool narrows() const noexcept { return wide_master_ != nullptr; }

  /// Materialize shard @p s's replica, allocated and written by the CALLING
  /// thread (the first-touch point — call it from the shard's own team): a
  /// copy of the master in same-type mode, a convert_storage<T>() narrowing
  /// of the wide master in wide-master mode (where shard 0 narrows too).
  /// Idempotent: an existing replica is returned as-is.  Distinct shards may
  /// replicate concurrently (each writes only its own pre-sized slot).
  std::shared_ptr<CoefStorage<T>> replicate(int s)
  {
    auto& slot = replicas_[static_cast<std::size_t>(s)];
    if (!slot)
      slot = wide_master_ ? convert_storage<T>(*wide_master_)
                          : std::make_shared<CoefStorage<T>>(*replicas_[0]);
    return slot;
  }

  /// The shard-local table: its replica when materialized, else the master.
  /// In wide-master mode shard 0 has no implicit table — replicate(0) must
  /// run (on shard 0's thread) before local() resolves for any shard.
  [[nodiscard]] std::shared_ptr<CoefStorage<T>> local(int s) const
  {
    const auto& slot = replicas_[static_cast<std::size_t>(s)];
    return slot ? slot : replicas_[0];
  }

  /// Bytes held by shard @p s's materialized replica (0 until replicate(s);
  /// shard 0 reports the master it adopted in same-type mode).
  [[nodiscard]] std::size_t replica_bytes(int s) const noexcept
  {
    const auto& slot = replicas_[static_cast<std::size_t>(s)];
    return slot ? slot->size_bytes() : 0;
  }

  /// Total bytes across all materialized replicas — what the population
  /// actually pinned across sockets for this table.
  [[nodiscard]] std::size_t total_replica_bytes() const noexcept
  {
    std::size_t total = 0;
    for (const auto& r : replicas_)
      if (r)
        total += r->size_bytes();
    return total;
  }

private:
  std::vector<std::shared_ptr<CoefStorage<T>>> replicas_;
  std::shared_ptr<const CoefStorage<double>> wide_master_;
};

} // namespace mqc

#endif // MQC_CORE_COEF_STORAGE_H
