// AoSoA ("tiled") engine — paper §V-B, Opt B.
//
// The orbital set is split along the spline dimension N into M tiles of
// nominal size Nb.  Each tile is a self-contained BsplineSoA whose
// coefficient table is (nx+3)(ny+3)(nz+3) x Nb — the blocked read working set
// — and whose outputs land in a slice of the walker's component streams.
// Tiles share nothing and can be evaluated in any order by any thread, which
// is exactly the parallelism Opt C (nested threading) exploits.
//
// Slice layout: tile t writes component q at  base + q*stride + offset(t)
// where offset(t) is the sum of padded sizes of tiles < t.  Because every
// tile except possibly the last has Nb % simd_lanes == 0, each slice is
// 64-byte aligned and the union of slices is exactly the padded full set.
//
// Precision split: like BsplineSoA, the element type is two parameters
// `MultiBspline<TStore, TCompute>` (storage/interface type vs internal
// weight/accumulation type); the historical `MultiBspline<T>` is the
// TCompute = TStore default and is bit-for-bit unchanged.  All tiles share
// one TCompute evaluation grid, so one weight set per position still serves
// every tile on the mixed path.
#ifndef MQC_CORE_MULTI_BSPLINE_H
#define MQC_CORE_MULTI_BSPLINE_H

#include <cassert>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/vec3.h"
#include "core/bspline_soa.h"
#include "core/coef_storage.h"

namespace mqc {

template <typename TStore, typename TCompute = TStore>
class MultiBspline
{
public:
  using store_type = TStore;
  using compute_type = TCompute;
  using tile_type = BsplineSoA<TStore, TCompute>;
  using weights_type = typename tile_type::weights_type;

  /// Split an existing full coefficient table into tiles of @p tile_size.
  /// tile_size must be a multiple of the SIMD lane count; the last tile
  /// absorbs any remainder of num_splines.
  MultiBspline(const CoefStorage<TStore>& full, int tile_size)
      : num_splines_(full.num_splines()), tile_size_(tile_size)
  {
    assert(tile_size > 0);
    assert(static_cast<std::size_t>(tile_size) % simd_lanes<TStore> == 0);
    const int n = full.num_splines();
    std::size_t offset = 0;
    for (int first = 0; first < n; first += tile_size) {
      const int count = std::min(tile_size, n - first);
      auto tile_coefs = std::make_shared<CoefStorage<TStore>>(full.grid(), count);
      tile_coefs->assign_spline_range(full, first, count);
      offsets_.push_back(offset);
      offset += tile_coefs->padded_splines();
      tiles_.emplace_back(std::move(tile_coefs));
    }
    padded_splines_ = offset;
  }

  [[nodiscard]] int num_splines() const noexcept { return num_splines_; }
  [[nodiscard]] int tile_size() const noexcept { return tile_size_; }
  [[nodiscard]] int num_tiles() const noexcept { return static_cast<int>(tiles_.size()); }
  /// Shared storage grid (identical across tiles).
  [[nodiscard]] const Grid3D<TStore>& grid() const noexcept
  {
    return tiles_.front().coefs().grid();
  }
  /// Shared TCompute evaluation grid: one weight set per position serves
  /// every tile — the basis of the multi-position layer.
  [[nodiscard]] const Grid3D<TCompute>& eval_grid() const noexcept
  {
    return tiles_.front().eval_grid();
  }
  /// Total slice length of one output component (also the natural stride).
  [[nodiscard]] std::size_t padded_splines() const noexcept { return padded_splines_; }
  [[nodiscard]] std::size_t out_stride() const noexcept { return padded_splines_; }
  [[nodiscard]] std::size_t tile_offset(int t) const noexcept
  {
    return offsets_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] const tile_type& tile(int t) const noexcept
  {
    return tiles_[static_cast<std::size_t>(t)];
  }
  /// Bytes of coefficient data per tile — the blocked input working set
  /// 4*Ng*Nb the paper's cache analysis is written in terms of.
  [[nodiscard]] std::size_t tile_bytes(int t) const noexcept
  {
    return tiles_[static_cast<std::size_t>(t)].coefs().size_bytes();
  }
  /// Total coefficient bytes across all tiles — what a full-set sweep streams.
  [[nodiscard]] std::size_t coef_bytes() const noexcept
  {
    std::size_t total = 0;
    for (const auto& t : tiles_)
      total += t.coef_bytes();
    return total;
  }

  // -- per-tile kernels (the unit of nested-threading work) ---------------

  void evaluate_v_tile(int t, TStore x, TStore y, TStore z, TStore* v) const
  {
    tiles_[static_cast<std::size_t>(t)].evaluate_v(x, y, z, v + offsets_[static_cast<std::size_t>(t)]);
  }

  void evaluate_vgl_tile(int t, TStore x, TStore y, TStore z, TStore* v, TStore* g, TStore* l,
                         std::size_t stride) const
  {
    const std::size_t off = offsets_[static_cast<std::size_t>(t)];
    tiles_[static_cast<std::size_t>(t)].evaluate_vgl(x, y, z, v + off, g + off, l + off, stride);
  }

  void evaluate_vgh_tile(int t, TStore x, TStore y, TStore z, TStore* v, TStore* g, TStore* h,
                         std::size_t stride) const
  {
    const std::size_t off = offsets_[static_cast<std::size_t>(t)];
    tiles_[static_cast<std::size_t>(t)].evaluate_vgh(x, y, z, v + off, g + off, h + off, stride);
  }

  // -- multi-position tile kernels (unit of position-blocked work) --------
  //
  // Evaluate `count` positions (precomputed weight sets, shared grid)
  // against tile t in one pass: the tile's 4*Ng*Nb-byte coefficient slice is
  // streamed from memory once and stays cache-resident for all `count`
  // positions.  Position p writes into the tile's slice of v[p] (g[p], ...).

  void evaluate_v_tile_multi(int t, const weights_type* w, int count, TStore* const* v) const
  {
    const std::size_t off = offsets_[static_cast<std::size_t>(t)];
    const tile_type& tile = tiles_[static_cast<std::size_t>(t)];
    for (int p = 0; p < count; ++p)
      tile.evaluate_v_w(w[p], v[p] + off);
  }

  void evaluate_vgl_tile_multi(int t, const weights_type* w, int count, TStore* const* v,
                               TStore* const* g, TStore* const* l, std::size_t stride) const
  {
    const std::size_t off = offsets_[static_cast<std::size_t>(t)];
    const tile_type& tile = tiles_[static_cast<std::size_t>(t)];
    for (int p = 0; p < count; ++p)
      tile.evaluate_vgl_w(w[p], v[p] + off, g[p] + off, l[p] + off, stride);
  }

  void evaluate_vgh_tile_multi(int t, const weights_type* w, int count, TStore* const* v,
                               TStore* const* g, TStore* const* h, std::size_t stride) const
  {
    const std::size_t off = offsets_[static_cast<std::size_t>(t)];
    const tile_type& tile = tiles_[static_cast<std::size_t>(t)];
    for (int p = 0; p < count; ++p)
      tile.evaluate_vgh_w(w[p], v[p] + off, g[p] + off, h[p] + off, stride);
  }

  // -- whole-set multi-position kernels (serial tile-outer loop) ----------
  //
  // All `count` weight sets are computed once up front and reused by every
  // tile; each tile's coefficient slice is then swept exactly once for the
  // whole block.  Compare the single-position whole-set kernels below,
  // which stream the entire table once *per position*.

  void evaluate_v_multi(const Vec3<TStore>* pos, int count, TStore* const* v) const
  {
    std::vector<weights_type> w(static_cast<std::size_t>(count));
    compute_weights_v_batch(eval_grid(), pos, count, w.data());
    for (int t = 0; t < num_tiles(); ++t)
      evaluate_v_tile_multi(t, w.data(), count, v);
  }

  void evaluate_vgl_multi(const Vec3<TStore>* pos, int count, TStore* const* v, TStore* const* g,
                          TStore* const* l, std::size_t stride) const
  {
    std::vector<weights_type> w(static_cast<std::size_t>(count));
    compute_weights_vgh_batch(eval_grid(), pos, count, w.data());
    for (int t = 0; t < num_tiles(); ++t)
      evaluate_vgl_tile_multi(t, w.data(), count, v, g, l, stride);
  }

  void evaluate_vgh_multi(const Vec3<TStore>* pos, int count, TStore* const* v, TStore* const* g,
                          TStore* const* h, std::size_t stride) const
  {
    std::vector<weights_type> w(static_cast<std::size_t>(count));
    compute_weights_vgh_batch(eval_grid(), pos, count, w.data());
    for (int t = 0; t < num_tiles(); ++t)
      evaluate_vgh_tile_multi(t, w.data(), count, v, g, h, stride);
  }

  // -- whole-set kernels (serial tile loop; Fig. 6 with one thread) -------

  void evaluate_v(TStore x, TStore y, TStore z, TStore* v) const
  {
    for (int t = 0; t < num_tiles(); ++t)
      evaluate_v_tile(t, x, y, z, v);
  }

  void evaluate_vgl(TStore x, TStore y, TStore z, TStore* v, TStore* g, TStore* l,
                    std::size_t stride) const
  {
    for (int t = 0; t < num_tiles(); ++t)
      evaluate_vgl_tile(t, x, y, z, v, g, l, stride);
  }

  void evaluate_vgh(TStore x, TStore y, TStore z, TStore* v, TStore* g, TStore* h,
                    std::size_t stride) const
  {
    for (int t = 0; t < num_tiles(); ++t)
      evaluate_vgh_tile(t, x, y, z, v, g, h, stride);
  }

private:
  int num_splines_;
  int tile_size_;
  std::size_t padded_splines_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<tile_type> tiles_;
};

} // namespace mqc

#endif // MQC_CORE_MULTI_BSPLINE_H
